// Table 1: similarity self-join over T = {LB, RB, FB, ZZ, Random} with
// ~1000 nodes per tree; for every algorithm, the total join runtime and
// the total number of relevant subproblems.
//
// The paper's qualitative result: RTED widely outperforms all competitors
// because the join mixes shapes and every fixed strategy degenerates on
// some pair (e.g. Zhang-L/R on the LB-RB pair).
//
//   $ ./table1_join [--size=600] [--threshold=300]
//     Default is a reduced 600-node instance (~1.5 min); use --size=1000
//     for the paper's scale (~10 min).  Counts scale, the ranking does not.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "join/similarity_join.h"

int main(int argc, char** argv) {
  const rted::bench::Flags flags(argc, argv);
  const int size = flags.GetInt("size", 600);
  const double threshold = flags.GetDouble("threshold", size / 2.0);

  std::vector<rted::Tree> trees;
  trees.push_back(rted::bench::MakeShape("LB", size));
  trees.push_back(rted::bench::MakeShape("RB", size));
  // FB at the nearest perfect size, as in the paper (1023 for 1000).
  int fb = 1;
  while (fb * 2 + 1 <= size + size / 4) fb = fb * 2 + 1;
  trees.push_back(rted::bench::MakeShape("FB", fb));
  trees.push_back(rted::bench::MakeShape("ZZ", size));
  trees.push_back(rted::bench::MakeShape("Random", size));

  std::printf("# Table 1 - join on trees with different shapes "
              "(~%d nodes, tau = %.0f)\n",
              size, threshold);
  std::printf("# %-12s %12s %22s %10s\n", "Algorithm", "Time [sec]",
              "#Rel. subproblems", "#matches");
  const rted::Algorithm algorithms[] = {
      rted::Algorithm::kZhangLeft, rted::Algorithm::kZhangRight,
      rted::Algorithm::kKleinHeavy, rted::Algorithm::kDemaineHeavy,
      rted::Algorithm::kRted};
  for (const rted::Algorithm algorithm : algorithms) {
    rted::JoinOptions options;
    options.threshold = threshold;
    options.algorithm = algorithm;
    const rted::JoinResult result = rted::SimilarityJoin(trees, options);
    std::printf("%-14s %12.2f %22lld %10zu\n", rted::ToString(algorithm),
                result.seconds,
                static_cast<long long>(result.total_subproblems),
                result.matches.size());
    std::fflush(stdout);
  }
  return 0;
}
