// Ablation: strategy choice vs executor constants.
//
// Runs the *same* GTED executor under every fixed strategy and under the
// optimal strategy, plus the hard-coded standalone Zhang-L, on one shape.
// Separates two effects the paper discusses in §8:
//   1. the strategy's subproblem count (the asymptotic driver), and
//   2. the per-subproblem constant (the standalone Zhang-L is faster per
//      cell than the generic executor by a constant below two).
//
//   $ ./ablate_strategies [--size=500] [--shape=MX]

#include <cstdio>
#include <string>

#include "algo/gted.h"
#include "algo/zhang_shasha.h"
#include "bench/bench_util.h"
#include "strategy/opt_strategy.h"
#include "strategy/strategy.h"
#include "tree/node_index.h"

int main(int argc, char** argv) {
  const rted::bench::Flags flags(argc, argv);
  const int size = flags.GetInt("size", 500);
  const std::string shape = flags.GetString("shape", "MX");
  const rted::Tree tree = rted::bench::MakeShape(shape, size);
  const rted::UnitCostModel unit;

  std::printf("# Strategy ablation - %s trees, n = %d, identical pair\n",
              shape.c_str(), size);
  std::printf("# %-22s %14s %12s %16s\n", "configuration", "subproblems",
              "time[s]", "ns/subproblem");

  auto report = [](const char* name, long long subproblems, double seconds) {
    std::printf("%-24s %14lld %12.4f %16.2f\n", name, subproblems, seconds,
                1e9 * seconds / static_cast<double>(subproblems));
  };

  // Standalone Zhang-L: hard-coded strategy, minimal constants.
  {
    rted::TedStats stats;
    const double t = rted::bench::TimeSeconds(
        [&] { stats = rted::ZhangShashaLeft(tree, tree, unit); });
    report("Zhang-L (standalone)", stats.subproblems, t);
  }
  // GTED under each fixed strategy.
  const struct {
    const char* name;
    rted::FixedStrategyKind kind;
  } kFixed[] = {
      {"GTED left", rted::FixedStrategyKind::kZhangLeft},
      {"GTED right", rted::FixedStrategyKind::kZhangRight},
      {"GTED heavy (Klein)", rted::FixedStrategyKind::kKleinHeavy},
      {"GTED heavy (Demaine)", rted::FixedStrategyKind::kDemaineHeavy},
  };
  for (const auto& config : kFixed) {
    rted::TedStats stats;
    const double t = rted::bench::TimeSeconds([&] {
      stats = rted::GtedWithStrategy(
          tree, tree, unit, rted::FixedStrategy(config.kind, tree, tree));
    });
    report(config.name, stats.subproblems, t);
  }
  // GTED under the one-sided optimal strategy (Dulucq & Touzet class, §7).
  {
    const rted::NodeIndex index(tree);
    rted::OptStrategyOptions one_sided;
    one_sided.decompose_both = false;
    const rted::StrategyResult strategy =
        rted::OptStrategy(index, index, one_sided);
    rted::TedStats stats;
    const double t = rted::bench::TimeSeconds([&] {
      stats = rted::GtedWithStrategy(tree, tree, unit, *strategy.strategy);
    });
    report("GTED optimal one-sided", stats.subproblems, t);
  }
  // GTED under the optimal strategy (strategy time reported separately).
  {
    const rted::NodeIndex index(tree);
    rted::StrategyResult strategy;
    const double t_strategy = rted::bench::TimeSeconds(
        [&] { strategy = rted::OptStrategy(index, index); });
    rted::TedStats stats;
    const double t_dist = rted::bench::TimeSeconds([&] {
      stats = rted::GtedWithStrategy(tree, tree, unit, *strategy.strategy);
    });
    report("GTED optimal (RTED)", stats.subproblems, t_dist);
    std::printf("%-24s %14s %12.4f\n", "  + strategy computation", "-",
                t_strategy);
  }
  return 0;
}
