// Figure 9 (a-c): wall-clock runtime of Zhang-L, Demaine-H and RTED on
// identical-tree pairs of the shapes where the competitors diverge:
//   (a) full binary trees  - Zhang-L ~ RTED fast, Demaine-H slow;
//   (b) zig-zag trees      - Zhang-L degenerates, RTED <= Demaine-H;
//   (c) mixed trees        - RTED alone scales.
//
// Absolute times differ from the paper's 2011 Java testbed; the series
// shapes and crossovers are the reproduced result.  RTED's time includes
// the strategy computation, as in the paper.
//
//   $ ./fig9_runtime [--max-size=1000] [--points=5] [--paper]
//     --paper extends the grids to the paper's full axes (FB 1023,
//     ZZ 2000, MX 1600); expect several minutes for Zhang-L on ZZ.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/ted.h"

namespace {

void RunSeries(const std::string& shape, const std::vector<int>& sizes) {
  std::printf("# Figure 9 - shape %s (identical tree pairs), seconds\n",
              shape.c_str());
  std::printf("# %8s %12s %12s %12s\n", "size", "Zhang-L", "Demaine-H",
              "RTED");
  for (const int n : sizes) {
    const rted::Tree tree = rted::bench::MakeShape(shape, n);
    double times[3];
    const rted::Algorithm algorithms[3] = {rted::Algorithm::kZhangLeft,
                                           rted::Algorithm::kDemaineHeavy,
                                           rted::Algorithm::kRted};
    for (int a = 0; a < 3; ++a) {
      rted::TedOptions options;
      options.algorithm = algorithms[a];
      times[a] = rted::bench::TimeSeconds(
          [&] { rted::Ted(tree, tree, options); });
    }
    std::printf("%10d %12.4f %12.4f %12.4f\n", n, times[0], times[1],
                times[2]);
    std::fflush(stdout);
  }
  std::printf("\n");
}

std::vector<int> Grid(int max, int points) {
  std::vector<int> sizes;
  for (int i = 1; i <= points; ++i) sizes.push_back(max * i / points);
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  const rted::bench::Flags flags(argc, argv);
  const bool paper = flags.GetBool("paper");
  const int points = flags.GetInt("points", 5);
  const int fb_max = flags.GetInt("max-size", paper ? 1023 : 1023);
  const int zz_max = flags.GetInt("max-size", paper ? 2000 : 1000);
  const int mx_max = flags.GetInt("max-size", paper ? 1600 : 1000);

  // (a) full binary: perfect sizes 2^k - 1.
  std::vector<int> fb_sizes;
  for (int n = 63; n <= fb_max; n = n * 2 + 1) fb_sizes.push_back(n);
  RunSeries("FB", fb_sizes);
  // (b) zig-zag.
  RunSeries("ZZ", Grid(zz_max, points));
  // (c) mixed.
  RunSeries("MX", Grid(mx_max, points));
  return 0;
}
