// Ablation: single-path function dispatch.
//
// Theorem 1 remarks that calling Delta-I on left or right paths cannot
// beat Delta-L / Delta-R, because F(F, GammaL/R) is a subset of A(F); the
// cost formula therefore charges left/right paths to the cheaper
// functions.  This bench quantifies the claim: GTED with the left-path
// strategy executed (a) with proper dispatch and (b) with Delta-I forced
// for every path.
//
//   $ ./ablate_spf [--size=600]

#include <cstdio>

#include "algo/gted.h"
#include "bench/bench_util.h"
#include "strategy/strategy.h"

int main(int argc, char** argv) {
  const rted::bench::Flags flags(argc, argv);
  const int size = flags.GetInt("size", 600);
  const rted::UnitCostModel unit;

  std::printf("# SPF ablation - left-path strategy, identical pairs\n");
  std::printf("# %-8s %8s %14s %10s %14s %10s %8s\n", "shape", "size",
              "dispatch#", "time[s]", "forced-DI#", "time[s]", "ratio");
  for (const char* shape : {"LB", "FB", "Random", "MX"}) {
    const rted::Tree tree = rted::bench::MakeShape(shape, size);
    const rted::FixedStrategy strategy(rted::FixedStrategyKind::kZhangLeft,
                                       tree, tree);
    rted::TedStats dispatched, forced;
    const double t1 = rted::bench::TimeSeconds([&] {
      rted::GtedExecutor executor(tree, tree, unit);
      dispatched = executor.Run(strategy);
    });
    rted::GtedOptions force;
    force.force_inner_spf = true;
    const double t2 = rted::bench::TimeSeconds([&] {
      rted::GtedExecutor executor(tree, tree, unit, force);
      forced = executor.Run(strategy);
    });
    if (dispatched.distance != forced.distance) {
      std::fprintf(stderr, "DISTANCE MISMATCH on %s\n", shape);
      return 1;
    }
    std::printf("%-10s %8d %14lld %10.4f %14lld %10.4f %7.1fx\n", shape, size,
                static_cast<long long>(dispatched.subproblems), t1,
                static_cast<long long>(forced.subproblems), t2,
                static_cast<double>(forced.subproblems) /
                    static_cast<double>(dispatched.subproblems));
    std::fflush(stdout);
  }
  return 0;
}
