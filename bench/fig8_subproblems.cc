// Figure 8 (a-f): number of relevant subproblems vs tree size, for pairs of
// identical trees of each shape (LB, RB, FB, ZZ, Random, MX) and each
// algorithm (Zhang-L, Zhang-R, Klein-H, Demaine-H, RTED).
//
// The counts are analytic (Lemma 4 + the strategy cost recursion +
// OptStrategy), which is exactly what the paper plots; the tests pin these
// numbers to instrumented executions.
//
// Output: one TSV block per shape, paper-ready.
//
//   $ ./fig8_subproblems [--max-size=2000] [--step=200]

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/subproblems.h"
#include "bench/bench_util.h"
#include "tree/node_index.h"

int main(int argc, char** argv) {
  const rted::bench::Flags flags(argc, argv);
  const int max_size = flags.GetInt("max-size", 2000);
  const int step = flags.GetInt("step", 200);

  const std::vector<std::string> shapes = {"LB", "RB",     "FB",
                                           "ZZ", "Random", "MX"};
  for (const std::string& shape : shapes) {
    std::printf("# Figure 8 - shape %s (identical tree pairs)\n",
                shape.c_str());
    std::printf("# %8s %14s %14s %14s %14s %14s\n", "size", "Zhang-L",
                "Zhang-R", "Klein-H", "Demaine-H", "RTED");
    for (int n = 20; n <= max_size; n = n == 20 ? step : n + step) {
      // FB is plotted at perfect sizes in the paper; the heap-shaped tree
      // is equivalent for counting, so the same grid is fine.
      const rted::Tree tree = rted::bench::MakeShape(shape, n);
      const rted::NodeIndex index(tree);
      const rted::SubproblemCounts counts =
          rted::CountAllSubproblems(index, index);
      std::printf("%10d %14lld %14lld %14lld %14lld %14lld\n", n,
                  static_cast<long long>(counts.zhang_left),
                  static_cast<long long>(counts.zhang_right),
                  static_cast<long long>(counts.klein_heavy),
                  static_cast<long long>(counts.demaine_heavy),
                  static_cast<long long>(counts.rted));
    }
    // Headline ratios at the largest size (the paper quotes LB@1700:
    // Zhang-R/RTED = 2290x; MX@1600: best = 8.5x, worst = 30x).
    const rted::Tree tree = rted::bench::MakeShape(shape, max_size);
    const rted::NodeIndex index(tree);
    const rted::SubproblemCounts counts =
        rted::CountAllSubproblems(index, index);
    std::printf("# at n=%d: best-competitor/RTED = %.2fx, "
                "worst-competitor/RTED = %.2fx\n\n",
                max_size,
                static_cast<double>(counts.best_competitor()) /
                    static_cast<double>(counts.rted),
                static_cast<double>(counts.worst_competitor()) /
                    static_cast<double>(counts.rted));
  }
  return 0;
}
