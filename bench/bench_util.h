// Shared helpers for the benchmark harness: flag parsing, timing, and the
// shape factory used across the paper's experiments.

#ifndef RTED_BENCH_BENCH_UTIL_H_
#define RTED_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "gen/shapes.h"
#include "tree/tree.h"

namespace rted::bench {

/// Parses "--name=value" style flags; everything is optional.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  int GetInt(const std::string& name, int fallback) const {
    const std::string value = GetRaw(name);
    return value.empty() ? fallback : std::atoi(value.c_str());
  }
  double GetDouble(const std::string& name, double fallback) const {
    const std::string value = GetRaw(name);
    return value.empty() ? fallback : std::atof(value.c_str());
  }
  bool GetBool(const std::string& name) const {
    for (const std::string& arg : args_) {
      if (arg == "--" + name) return true;
    }
    return !GetRaw(name).empty();
  }
  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    const std::string value = GetRaw(name);
    return value.empty() ? fallback : value;
  }

 private:
  std::string GetRaw(const std::string& name) const {
    const std::string prefix = "--" + name + "=";
    for (const std::string& arg : args_) {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    }
    return "";
  }
  std::vector<std::string> args_;
};

/// Wall-clock seconds for one invocation of fn.
inline double TimeSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The synthetic shapes of Figure 7 by paper name.
inline Tree MakeShape(const std::string& name, int n) {
  if (name == "LB") return gen::LeftBranchTree(n);
  if (name == "RB") return gen::RightBranchTree(n);
  if (name == "FB") return gen::FullBinaryTree(n);
  if (name == "ZZ") return gen::ZigZagTree(n);
  if (name == "MX") return gen::MixedTree(n);
  if (name == "Random") return gen::RandomTree(n, 42);
  std::fprintf(stderr, "unknown shape '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace rted::bench

#endif  // RTED_BENCH_BENCH_UTIL_H_
