// Table 2 (a, b): RTED's subproblem count as a percentage of the best and
// worst competitor on phylogeny-shaped (TreeFam-like) trees, partitioned by
// size (<500, 500-1000, >1000), with 20-tree samples per partition and all
// cross-partition pairs - the paper's "scalability on real world data"
// experiment.
//
// Paper's result bands: 84.2-94.4% of the best competitor, 5.6-30.6% of the
// worst, with the advantage growing with tree size.
//
//   $ ./table2_treefam [--sample=20] [--seed=7]

#include <cstdio>
#include <vector>

#include "analysis/subproblems.h"
#include "bench/bench_util.h"
#include "gen/datasets.h"
#include "tree/node_index.h"

namespace {

struct CellRatios {
  double vs_best = 0;
  double vs_worst = 0;
};

CellRatios Measure(const std::vector<rted::Tree>& a,
                   const std::vector<rted::Tree>& b) {
  long long rted_total = 0, best_total = 0, worst_total = 0;
  for (const rted::Tree& f : a) {
    const rted::NodeIndex fi(f);
    for (const rted::Tree& g : b) {
      const rted::NodeIndex gi(g);
      const rted::SubproblemCounts counts = rted::CountAllSubproblems(fi, gi);
      rted_total += counts.rted;
      best_total += counts.best_competitor();
      worst_total += counts.worst_competitor();
    }
  }
  return {100.0 * static_cast<double>(rted_total) /
              static_cast<double>(best_total),
          100.0 * static_cast<double>(rted_total) /
              static_cast<double>(worst_total)};
}

}  // namespace

int main(int argc, char** argv) {
  const rted::bench::Flags flags(argc, argv);
  const int sample = flags.GetInt("sample", 20);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7));

  const char* kPartitionNames[3] = {"<500", "500-1000", ">1000"};
  std::vector<std::vector<rted::Tree>> partitions;
  partitions.push_back(
      rted::gen::DatasetPool(rted::gen::DatasetKind::kTreeFam, sample, 100,
                             499, seed));
  partitions.push_back(
      rted::gen::DatasetPool(rted::gen::DatasetKind::kTreeFam, sample, 500,
                             1000, seed + 1));
  partitions.push_back(
      rted::gen::DatasetPool(rted::gen::DatasetKind::kTreeFam, sample, 1001,
                             2000, seed + 2));

  CellRatios cells[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      cells[i][j] = Measure(partitions[static_cast<std::size_t>(i)],
                            partitions[static_cast<std::size_t>(j)]);
      std::fprintf(stderr, "measured partition pair (%s, %s)\n",
                   kPartitionNames[i], kPartitionNames[j]);
    }
  }

  std::printf("# Table 2(a) - RTED subproblems as %% of the BEST "
              "competitor (TreeFam-like, %d trees/partition)\n",
              sample);
  std::printf("%-12s %10s %10s %10s\n", "sizes", kPartitionNames[0],
              kPartitionNames[1], kPartitionNames[2]);
  for (int i = 0; i < 3; ++i) {
    std::printf("%-12s %9.1f%% %9.1f%% %9.1f%%\n", kPartitionNames[i],
                cells[i][0].vs_best, cells[i][1].vs_best,
                cells[i][2].vs_best);
  }
  std::printf("\n# Table 2(b) - RTED subproblems as %% of the WORST "
              "competitor\n");
  std::printf("%-12s %10s %10s %10s\n", "sizes", kPartitionNames[0],
              kPartitionNames[1], kPartitionNames[2]);
  for (int i = 0; i < 3; ++i) {
    std::printf("%-12s %9.1f%% %9.1f%% %9.1f%%\n", kPartitionNames[i],
                cells[i][0].vs_worst, cells[i][1].vs_worst,
                cells[i][2].vs_worst);
  }
  return 0;
}
