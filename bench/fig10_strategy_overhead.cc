// Figure 10 (a-c): the overhead of the strategy computation within RTED's
// total runtime, on (a) TreeBank-like, (b) SwissProt-like and (c) synthetic
// random trees.  The paper's finding: the strategy computation scales
// smoothly (it is shape-independent O(n^2)) and its share of the total
// decreases with tree size; spikes in the total runtime come from tree
// shapes with no cheap strategy.
//
// Tree pairs are picked at regular size intervals from generated pools, as
// the paper picks from the datasets.
//
//   $ ./fig10_strategy_overhead [--points=10]

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/rted.h"
#include "gen/datasets.h"
#include "gen/shapes.h"

namespace {

void RunSeries(const char* name,
               const std::vector<std::pair<rted::Tree, rted::Tree>>& pairs) {
  std::printf("# Figure 10 - %s\n", name);
  std::printf("# %8s %16s %16s %10s\n", "size", "strategy[s]", "overall[s]",
              "share");
  for (const auto& [f, g] : pairs) {
    const rted::RtedResult r = rted::Rted(f, g);
    const double total = r.strategy_seconds + r.distance_seconds;
    std::printf("%10d %16.5f %16.5f %9.1f%%\n", (f.size() + g.size()) / 2,
                r.strategy_seconds, total,
                100.0 * r.strategy_seconds / (total > 0 ? total : 1));
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const rted::bench::Flags flags(argc, argv);
  const int points = flags.GetInt("points", 10);

  // (a) TreeBank-like: small deep trees, sizes up to ~300.
  {
    std::vector<std::pair<rted::Tree, rted::Tree>> pairs;
    for (int i = 1; i <= points; ++i) {
      const int n = 300 * i / points;
      pairs.emplace_back(
          rted::gen::TreeBankLike(n, static_cast<std::uint64_t>(i)),
          rted::gen::TreeBankLike(n, static_cast<std::uint64_t>(i) + 100));
    }
    RunSeries("TreeBank-like dataset", pairs);
  }
  // (b) SwissProt-like: flat wide trees, sizes up to ~2000.
  {
    std::vector<std::pair<rted::Tree, rted::Tree>> pairs;
    for (int i = 1; i <= points; ++i) {
      const int n = 2000 * i / points;
      pairs.emplace_back(
          rted::gen::SwissProtLike(n, static_cast<std::uint64_t>(i)),
          rted::gen::SwissProtLike(n, static_cast<std::uint64_t>(i) + 100));
    }
    RunSeries("SwissProt-like dataset", pairs);
  }
  // (c) synthetic random trees, sizes up to ~3000.
  {
    std::vector<std::pair<rted::Tree, rted::Tree>> pairs;
    for (int i = 1; i <= points; ++i) {
      const int n = 3000 * i / points;
      pairs.emplace_back(rted::gen::RandomTree(n, static_cast<std::uint64_t>(i)),
                         rted::gen::RandomTree(
                             n, static_cast<std::uint64_t>(i) + 100));
    }
    RunSeries("synthetic random trees", pairs);
  }
  return 0;
}
