// Micro benchmarks (google-benchmark) for the core building blocks:
// parsing, NodeIndex construction, mirroring, OptStrategy throughput, and
// the distance kernels on small inputs.  These guard the constants behind
// the paper-level benches.

#include <benchmark/benchmark.h>

#include "algo/gted.h"
#include "algo/zhang_shasha.h"
#include "core/rted.h"
#include "gen/shapes.h"
#include "strategy/opt_strategy.h"
#include "tree/bracket.h"
#include "tree/node_index.h"

namespace {

void BM_ParseBracket(benchmark::State& state) {
  const rted::Tree tree = rted::gen::RandomTree(
      static_cast<int>(state.range(0)), 1);
  const std::string text = rted::ToBracket(tree);
  for (auto _ : state) {
    auto parsed = rted::ParseBracket(text);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParseBracket)->Arg(100)->Arg(1000)->Arg(10000);

void BM_NodeIndexBuild(benchmark::State& state) {
  const rted::Tree tree = rted::gen::RandomTree(
      static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    rted::NodeIndex index(tree);
    benchmark::DoNotOptimize(index.full_decomp(tree.root()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NodeIndexBuild)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Mirror(benchmark::State& state) {
  const rted::Tree tree = rted::gen::RandomTree(
      static_cast<int>(state.range(0)), 3);
  std::vector<rted::NodeId> map;
  for (auto _ : state) {
    rted::Tree mirrored = tree.Mirrored(&map);
    benchmark::DoNotOptimize(mirrored);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Mirror)->Arg(1000)->Arg(10000);

void BM_OptStrategy(benchmark::State& state) {
  const rted::Tree tree = rted::gen::RandomTree(
      static_cast<int>(state.range(0)), 4);
  const rted::NodeIndex index(tree);
  for (auto _ : state) {
    auto result = rted::OptStrategy(index, index);
    benchmark::DoNotOptimize(result.cost);
  }
  // Pairs per second: the O(n^2) sweep is the unit of Theorem 4.
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_OptStrategy)->Arg(100)->Arg(500)->Arg(1000);

void BM_ZhangShashaFullBinary(benchmark::State& state) {
  const rted::Tree tree =
      rted::gen::FullBinaryTree(static_cast<int>(state.range(0)));
  const rted::UnitCostModel unit;
  std::int64_t cells = 0;
  for (auto _ : state) {
    const rted::TedStats stats = rted::ZhangShashaLeft(tree, tree, unit);
    cells = stats.subproblems;
    benchmark::DoNotOptimize(stats.distance);
  }
  state.SetItemsProcessed(state.iterations() * cells);
  state.SetLabel("items = DP cells");
}
BENCHMARK(BM_ZhangShashaFullBinary)->Arg(127)->Arg(255)->Arg(511);

void BM_SpfInnerViaDemaine(benchmark::State& state) {
  // Demaine on zig-zag trees is Delta-I-dominated.
  const rted::Tree tree =
      rted::gen::ZigZagTree(static_cast<int>(state.range(0)));
  const rted::UnitCostModel unit;
  std::int64_t cells = 0;
  for (auto _ : state) {
    const rted::TedStats stats = rted::GtedWithStrategy(
        tree, tree, unit,
        rted::FixedStrategy(rted::FixedStrategyKind::kDemaineHeavy, tree,
                            tree));
    cells = stats.subproblems;
    benchmark::DoNotOptimize(stats.distance);
  }
  state.SetItemsProcessed(state.iterations() * cells);
  state.SetLabel("items = DP cells");
}
BENCHMARK(BM_SpfInnerViaDemaine)->Arg(100)->Arg(300)->Arg(500);

void BM_RtedEndToEnd(benchmark::State& state) {
  const rted::Tree f = rted::gen::MixedTree(static_cast<int>(state.range(0)));
  const rted::Tree g =
      rted::gen::RandomTree(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    const rted::RtedResult result = rted::Rted(f, g);
    benchmark::DoNotOptimize(result.distance);
  }
}
BENCHMARK(BM_RtedEndToEnd)->Arg(100)->Arg(300)->Arg(600);

}  // namespace

BENCHMARK_MAIN();
